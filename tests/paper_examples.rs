//! Integration pins for every worked example in the paper, driven
//! through the public facade API.

use mine_assessment::analysis::rules::evaluate_rules;
use mine_assessment::analysis::signal::{Signal, SignalPolicy};
use mine_assessment::analysis::status::StatusFlags;
use mine_assessment::analysis::OptionMatrix;
use mine_assessment::core::{GroupFraction, OptionKey};
use mine_assessment::metadata::{DifficultyIndex, DiscriminationIndex};

fn pid(s: &str) -> mine_assessment::core::ProblemId {
    s.parse().unwrap()
}

/// §3.3-III: "R=800, N=1000, then P = R/N = 800/1000 = 0.8 (80%)".
#[test]
fn difficulty_index_definition_example() {
    let p = DifficultyIndex::from_counts(800, 1000).unwrap();
    assert_eq!(p.value(), 0.8);
    assert_eq!(p.percent(), 80.0);
}

/// §4.1.1: Kelly (1939) — 27 % optimal, 25–33 % acceptable; the paper
/// fixes 25 %.
#[test]
fn kelly_fractions() {
    assert_eq!(GroupFraction::KELLY_OPTIMAL.value(), 0.27);
    assert!(GroupFraction::PAPER.is_acceptable());
    assert!(GroupFraction::new(0.33).unwrap().is_acceptable());
    assert!(!GroupFraction::new(0.34).unwrap().is_acceptable());
}

/// §4.1.2 Example 1: option C attracts nobody in the low group → Rule 1.
#[test]
fn example_1_rule_1() {
    let matrix = OptionMatrix::from_counts(
        pid("ex1"),
        OptionKey::A,
        vec![12, 2, 0, 3, 3],
        vec![6, 4, 0, 5, 5],
    );
    let findings = evaluate_rules(&matrix, 0.2);
    assert_eq!(findings.low_allure, vec![OptionKey::C]);
}

/// §4.1.2 Example 2: correct option C and wrong option E are both "not
/// well-defined" → Rule 2.
#[test]
fn example_2_rule_2() {
    let matrix = OptionMatrix::from_counts(
        pid("ex2"),
        OptionKey::C,
        vec![1, 2, 10, 0, 7],
        vec![2, 2, 13, 1, 2],
    );
    let findings = evaluate_rules(&matrix, 0.2);
    let options: Vec<_> = findings.not_well_defined.iter().map(|f| f.option).collect();
    assert!(options.contains(&OptionKey::C));
    assert!(options.contains(&OptionKey::E));
}

/// §4.1.2 Example 3: |LM−Lm| = 3 ≤ 4 = LS×20 % → low group lacks the
/// concept (Rule 3), but the high group is peaked.
#[test]
fn example_3_rule_3() {
    let matrix = OptionMatrix::from_counts(
        pid("ex3"),
        OptionKey::A,
        vec![15, 2, 2, 0, 1],
        vec![5, 4, 5, 4, 2],
    );
    let findings = evaluate_rules(&matrix, 0.2);
    assert!(findings.low_group_lacks_concept);
    assert!(!findings.both_groups_lack_concept);
}

/// §4.1.2 Example 4: both groups flat → Rule 4, whole class lacks the
/// concept.
#[test]
fn example_4_rule_4() {
    let matrix = OptionMatrix::from_counts(
        pid("ex4"),
        OptionKey::A,
        vec![4, 4, 4, 2, 6],
        vec![5, 4, 5, 4, 2],
    );
    let findings = evaluate_rules(&matrix, 0.2);
    assert!(findings.both_groups_lack_concept);
    let status = StatusFlags::from_rules(&findings);
    assert!(status.low_group_lacks_concept);
    assert!(status.high_group_lacks_concept);
}

/// §4.1.2 worked question no. 2: PH = 10/11 ≈ 0.91, PL = 4/11 ≈ 0.36,
/// D = 0.55, P ≈ 0.635, green light.
#[test]
fn question_no_2_is_green() {
    let ph = 10.0 / 11.0;
    let pl = 4.0 / 11.0;
    let d = DiscriminationIndex::new(ph - pl).unwrap();
    let p = DifficultyIndex::new((ph + pl) / 2.0).unwrap();
    assert_eq!((d.value() * 100.0).round() / 100.0, 0.55);
    // The paper rounds PH/PL first and reports P = 0.635; the unrounded
    // value is 7/11 ≈ 0.636.
    assert!((p.value() - 0.636).abs() < 0.001);
    assert_eq!(SignalPolicy::default().classify(d), Signal::Green);
}

/// §4.1.2 worked question no. 6: D = 0.09 (red) and Rule 1 flags the
/// allure of option A.
#[test]
fn question_no_6_is_red_with_rule_1() {
    let ph = 5.0 / 11.0;
    let pl = 4.0 / 11.0;
    let d = DiscriminationIndex::new(ph - pl).unwrap();
    assert_eq!((d.value() * 100.0).round() / 100.0, 0.09);
    assert_eq!(SignalPolicy::default().classify(d), Signal::Red);

    let matrix =
        OptionMatrix::from_counts(pid("no6"), OptionKey::D, vec![1, 1, 4, 5], vec![0, 2, 4, 4]);
    let findings = evaluate_rules(&matrix, 0.2);
    assert_eq!(findings.low_allure, vec![OptionKey::A]);
}

/// Table 3: the signal bands.
#[test]
fn table_3_bands() {
    let policy = SignalPolicy::default();
    let d = |v: f64| DiscriminationIndex::new(v).unwrap();
    assert_eq!(policy.classify(d(0.31)), Signal::Green);
    assert_eq!(policy.classify(d(0.30)), Signal::Green);
    assert_eq!(policy.classify(d(0.29)), Signal::Yellow);
    assert_eq!(policy.classify(d(0.20)), Signal::Yellow);
    assert_eq!(policy.classify(d(0.19)), Signal::Red);
    assert_eq!(policy.classify(d(0.0)), Signal::Red);
}
