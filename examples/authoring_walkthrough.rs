//! The §5 authoring flows behind Figures 3–5, driven through the API:
//! problem authoring, template layout, the exam group service, problem
//! search, and SCORM package exchange with an external repository.
//!
//! ```bash
//! cargo run --example authoring_walkthrough
//! ```

use mine_assessment::authoring::{AuthoringSystem, ExternalRepository};
use mine_assessment::core::{CognitionLevel, OptionKey};
use mine_assessment::itembank::template::SlotContent;
use mine_assessment::itembank::{
    ChoiceOption, Exam, ExamEntry, GroupStyle, LayoutSlot, Position, PresentationGroup, Problem,
    Query, Template,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = AuthoringSystem::new();

    // --- Figure 3: choice problem authoring -------------------------
    let choice = Problem::multiple_choice(
        "net-q1",
        "Which protocol provides reliable, ordered delivery?",
        [
            ChoiceOption::new(OptionKey::A, "TCP"),
            ChoiceOption::new(OptionKey::B, "UDP"),
            ChoiceOption::new(OptionKey::C, "ICMP"),
            ChoiceOption::new(OptionKey::D, "ARP"),
        ],
        OptionKey::A,
    )?
    .with_subject("transport")
    .with_cognition_level(CognitionLevel::Knowledge);
    system.author_problem("hung", choice)?;
    system.author_problem(
        "hung",
        Problem::true_false("net-q2", "UDP retransmits lost datagrams.", false)?
            .with_subject("transport")
            .with_cognition_level(CognitionLevel::Comprehension),
    )?;
    system.author_problem(
        "lin",
        Problem::completion(
            "net-q3",
            "The three-way handshake sends SYN, ___, ACK.",
            vec!["SYN-ACK".to_string()],
        )?
        .with_subject("transport")
        .with_cognition_level(CognitionLevel::Application),
    )?;
    println!("authored {} problems", system.repository().problem_count());

    // --- Figure 4: template layout, moving items --------------------
    let mut template = Template::new("picture-left".parse()?, "Picture left, question right");
    template.add_slot(LayoutSlot::new(
        SlotContent::Picture {
            resource: "images/tcp-handshake.png".into(),
        },
        Position::new(0, 0),
    ));
    let question_slot = template.add_slot(LayoutSlot::new(
        SlotContent::QuestionText,
        Position::new(300, 0),
    ));
    template.add_slot(LayoutSlot::new(
        SlotContent::OptionList,
        Position::new(300, 120),
    ));
    // "We set the presentation style by moving each item."
    template.move_slot(question_slot, Position::new(320, 10));
    println!("{}", template.render_preview());
    system.add_template("hung", template)?;
    system.duplicate_template(
        "hung",
        &"picture-left".parse()?,
        "picture-left-v2".parse()?,
        "Copy for the final exam",
    )?;

    // --- Figure 5: exam authoring with the group service ------------
    let exam = Exam::builder("net-midterm")?
        .title("Networking midterm")
        .group(
            PresentationGroup::new("objective".parse()?).with_style(GroupStyle {
                columns: 2,
                shuffle_within: true,
                page_break: false,
                heading: "Part I — objective questions".into(),
            }),
        )
        .entry_with(ExamEntry::new("net-q1".parse()?).in_group("objective".parse()?))
        .entry_with(ExamEntry::new("net-q2".parse()?).in_group("objective".parse()?))
        .entry_with(ExamEntry::new("net-q3".parse()?).worth(2.0))
        .test_time(std::time::Duration::from_secs(900))
        .build()?;
    system.author_exam("lin", exam)?;

    // --- Problem search ----------------------------------------------
    let hits = system.search_problems(&Query::builder().text("handshake").build());
    println!("search 'handshake' → {} hit(s)", hits.len());
    let similar = system.similar_problems(&"net-q1".parse()?, 2);
    println!(
        "problems similar to net-q1: {:?}",
        similar
            .iter()
            .map(|h| h.problem.as_str())
            .collect::<Vec<_>>()
    );

    // --- SCORM output service + external repository -----------------
    let external = ExternalRepository::new();
    system.publish(
        "lin",
        &"net-midterm".parse()?,
        &external,
        "net-midterm-2004",
    )?;
    println!("published packages: {:?}", external.list());

    // Another instructor's system reuses the package.
    let colleague = AuthoringSystem::new();
    let package = external.fetch("net-midterm-2004")?;
    println!(
        "fetched package {} ({} files, {} bytes)",
        package.manifest.identifier,
        package.files.len(),
        package.total_size(),
    );
    let report = colleague.import_package("chen", &package)?;
    println!(
        "imported {} problems and exam {:?}",
        report.imported_problems.len(),
        report.imported_exam.as_ref().map(|e| e.as_str()),
    );

    // --- audit trail -------------------------------------------------
    println!("\naudit log:");
    for entry in system.audit().entries() {
        println!(
            "  #{} {} {} {}",
            entry.seq, entry.actor, entry.action, entry.target
        );
    }
    Ok(())
}
