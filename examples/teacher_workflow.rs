//! A semester in the life of a teacher: build a course bank (including
//! a questionnaire), persist it, give the exam, read the full analysis
//! report, apply the write-back, and survey the class's opinion.
//!
//! ```bash
//! cargo run --example teacher_workflow
//! ```

use mine_assessment::analysis::{
    render_full_report, summarize_questionnaire, AnalysisConfig, ExamAnalysis,
};
use mine_assessment::authoring::AuthoringSystem;
use mine_assessment::core::{CognitionLevel, ExamRecord, OptionKey};
use mine_assessment::itembank::{assemble_parallel_forms, Blueprint};
use mine_assessment::itembank::{ChoiceOption, Exam, Problem};
use mine_assessment::scorm::AiccCourse;
use mine_assessment::simulator::{CohortSpec, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = AuthoringSystem::new();

    // --- build the course bank ---------------------------------------
    for i in 0..10 {
        system.author_problem(
            "teacher",
            Problem::multiple_choice(
                format!("q{i}"),
                format!("Course question {i}"),
                OptionKey::first(4).map(|k| ChoiceOption::new(k, format!("answer {k}"))),
                OptionKey::A,
            )?
            .with_subject(["sorting", "graphs", "hashing"][i % 3])
            .with_cognition_level(CognitionLevel::ALL[i % 3]),
        )?;
    }
    // End-of-term opinion survey (§3.2-VI questionnaire style).
    system.author_problem(
        "teacher",
        Problem::questionnaire(
            "survey-difficulty",
            "How difficult did you find this course? (A = trivial … E = impossible)",
            OptionKey::first(5).map(|k| ChoiceOption::new(k, format!("level {k}"))),
        )?,
    )?;

    let mut builder = Exam::builder("final")?.title("Final exam");
    for i in 0..10 {
        builder = builder.entry(format!("q{i}").parse()?);
    }
    let exam = builder.entry("survey-difficulty".parse()?).build()?;
    system.author_exam("teacher", exam)?;

    // --- persist the bank before exam day ----------------------------
    let dir = std::env::temp_dir().join("mine-teacher-workflow");
    std::fs::create_dir_all(&dir)?;
    let db_path = dir.join("course-bank.json");
    system.save_database("teacher", &db_path)?;
    println!(
        "database saved to {} ({} bytes)",
        db_path.display(),
        std::fs::metadata(&db_path)?.len()
    );

    // --- exam day: the class sits the final --------------------------
    let (exam, problems) = system.repository().resolve_exam(&"final".parse()?)?;
    let record = Simulation::new(exam, problems.clone())
        .cohort(CohortSpec::new(44).seed(2024))
        .run()?;
    let record = ExamRecord::new("final".parse()?, record.students);

    // --- read the full report -----------------------------------------
    let analysis = ExamAnalysis::analyze(&record, &problems, &AnalysisConfig::default())?;
    println!("\n{}", render_full_report(&analysis));

    // --- write the measured indices back into the bank ----------------
    system.apply_analysis("teacher", &"final".parse()?, &analysis)?;
    let q0 = system.repository().problem(&"q0".parse()?)?;
    let test_meta = q0.metadata().individual_test.as_ref().unwrap();
    println!(
        "q0 metadata now records {} {} with {} distraction note(s)",
        test_meta.difficulty.unwrap(),
        test_meta.discrimination.unwrap(),
        test_meta.distraction.len(),
    );

    // --- what did the class think? -------------------------------------
    let survey = summarize_questionnaire(&record, &"survey-difficulty".parse()?, 5)?;
    println!("\n{}", survey.render());

    // --- share the outcomes as a QTI results report --------------------
    let results = system.export_results_qti("teacher", &record)?;
    println!(
        "QTI results report: {} bytes for {} students",
        results.to_xml_string().len(),
        record.class_size(),
    );

    // --- assemble next semester's exams from the enriched bank ---------
    // A blueprint guarantees Table-4 coverage *before* the exam is given.
    let blueprint = Blueprint::new()
        .require(
            "sorting",
            mine_assessment::core::CognitionLevel::Knowledge,
            2,
        )
        .require(
            "graphs",
            mine_assessment::core::CognitionLevel::Comprehension,
            2,
        )
        .require(
            "hashing",
            mine_assessment::core::CognitionLevel::Application,
            2,
        );
    match system.assemble_exam("teacher", "final-v2", "Final v2 (blueprinted)", &blueprint) {
        Ok(exam) => println!("blueprinted exam assembled with {} questions", exam.len()),
        Err(err) => println!("blueprint unsatisfied: {err}"),
    }

    // Parallel forms A/B with matched difficulty spreads (the measured
    // indices written back above drive the balancing).
    let bank: Vec<Problem> = system
        .repository()
        .problem_ids()
        .into_iter()
        .filter_map(|id| system.repository().problem(&id).ok())
        .filter(|p| p.style() != mine_assessment::metadata::QuestionStyle::Questionnaire)
        .collect();
    let forms = assemble_parallel_forms(&bank, 2, 5)
        .map_err(|missing| format!("bank is {missing} problems short"))?;
    println!(
        "parallel forms: A = {:?}\n                B = {:?}",
        forms[0].iter().map(|p| p.as_str()).collect::<Vec<_>>(),
        forms[1].iter().map(|p| p.as_str()).collect::<Vec<_>>(),
    );

    // --- legacy LMS: ship the course as AICC structure files -----------
    let package = system.export_scorm("teacher", &"final".parse()?)?;
    let aicc = AiccCourse::from_manifest(&package.manifest)?;
    println!(
        "AICC export: {} assignable units, {} blocks\n{}",
        aicc.units.len(),
        aicc.blocks.len(),
        aicc.to_crs().lines().take(4).collect::<Vec<_>>().join("\n"),
    );

    // --- next semester: reload the persisted bank ----------------------
    let reloaded = AuthoringSystem::load_database(&db_path)?;
    println!(
        "reloaded bank: {} problems, {} exams (pre-analysis snapshot)",
        reloaded.repository().problem_count(),
        reloaded.repository().exam_count(),
    );
    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
