//! A full classroom study: engineer the paper's §4.1.2 pathologies into
//! a simulated exam and watch each rule fire, then run the whole-test
//! analysis (figures, two-way table, paint view) and the pre/post
//! Instructional Sensitivity Index.
//!
//! ```bash
//! cargo run --example classroom_analysis
//! ```

use mine_assessment::analysis::figures::render_ascii;
use mine_assessment::analysis::isi::instructional_sensitivity;
use mine_assessment::analysis::{render_signal_report, AnalysisConfig, ExamAnalysis};
use mine_assessment::core::{CognitionLevel, OptionKey};
use mine_assessment::itembank::{ChoiceOption, Exam, Problem};
use mine_assessment::simulator::{CohortSpec, DistractorWeights, ItemParams, Simulation};

fn choice(id: &str, subject: &str, level: CognitionLevel) -> Problem {
    Problem::multiple_choice(
        id,
        format!("({subject}) pick the right answer"),
        OptionKey::first(5).map(|k| ChoiceOption::new(k, format!("answer {k}"))),
        OptionKey::A,
    )
    .unwrap()
    .with_subject(subject)
    .with_cognition_level(level)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut problems = vec![
        // healthy, discriminating question
        choice("good", "tcp", CognitionLevel::Knowledge),
        // Rule 1 scenario: option E never attracts anyone
        choice("dead-distractor", "tcp", CognitionLevel::Knowledge),
        // Rule 2 scenario: high group is lured to option B
        choice("miskeyed", "routing", CognitionLevel::Comprehension),
        // Rules 3/4 scenario: nobody knows it, answers are flat guesses
        choice("untaught", "qos", CognitionLevel::Application),
        // low discrimination → red light
        choice("coin-flip", "routing", CognitionLevel::Comprehension),
    ];
    // Healthy filler questions so the score ranking (and hence the
    // high/low split) is driven by real ability, not by the pathological
    // items' noise.
    for i in 0..10 {
        problems.push(choice(
            &format!("filler{i}"),
            "tcp",
            CognitionLevel::Knowledge,
        ));
    }
    let mut builder = Exam::builder("clinic")?.title("Item clinic");
    for p in &problems {
        builder = builder.entry(p.id().clone());
    }
    let exam = builder.build()?;

    let simulation = Simulation::new(exam.clone(), problems.clone())
        .cohort(CohortSpec::new(44).seed(44))
        .item_params("good".parse()?, ItemParams::multiple_choice(2.0, 0.0, 5))
        .item_params(
            "dead-distractor".parse()?,
            ItemParams::multiple_choice(1.5, 0.0, 5),
        )
        .distractors(
            "dead-distractor".parse()?,
            DistractorWeights::new(vec![0.0, 1.0, 1.0, 1.0, 0.0]),
        )
        // "miskeyed": strong students get it wrong (negative a) and the
        // wrong ones cluster on B.
        .item_params("miskeyed".parse()?, ItemParams::new(0.05, 3.0, 0.15))
        .distractors(
            "miskeyed".parse()?,
            DistractorWeights::new(vec![0.0, 8.0, 1.0, 1.0, 1.0]),
        )
        // "untaught": pure guessing, flat across all options.
        .item_params("untaught".parse()?, ItemParams::new(0.05, 5.0, 0.2))
        .item_params("coin-flip".parse()?, ItemParams::new(0.1, 0.0, 0.5));

    let record = simulation.run()?;
    let analysis = ExamAnalysis::analyze(&record, &problems, &AnalysisConfig::default())?;

    println!("{}", render_signal_report(&analysis));
    for question in &analysis.questions {
        if let Some(matrix) = &question.matrix {
            if question.findings.any() {
                println!(
                    "--- {} (question {}) ---",
                    question.indices.problem, question.indices.number
                );
                print!("{}", matrix.render());
                println!("statuses: {:?}\n", question.status.labels());
            }
        }
    }

    println!("figure: time vs. questions answered");
    print!("{}", render_ascii(&analysis.figures.time_answered, 60, 10));
    println!("\nfigure: score vs. mean difficulty of correct answers");
    print!(
        "{}",
        render_ascii(&analysis.figures.score_difficulty, 60, 10)
    );

    println!("\ntwo-way specification table:");
    print!("{}", analysis.two_way.render());
    println!("paint view:");
    print!("{}", analysis.two_way.render_paint());
    if let Some((left, right)) = analysis.two_way.cognition_pyramid_violation() {
        println!("pyramid violated: SUM({left}) < SUM({right})");
    }
    let lost = analysis
        .two_way
        .lost_concepts(&["tcp", "routing", "qos", "dns"]);
    println!("lost concepts (expected dns to be missing): {lost:?}");

    // Instructional Sensitivity Index: same cohort before and after
    // teaching raised abilities by 1.2.
    let (pre, post) = simulation.run_pre_post(CohortSpec::new(120).seed(7), 1.2)?;
    let isi = instructional_sensitivity(&pre, &post)?;
    println!("\nInstructional Sensitivity Index (post − pre correct rate):");
    for q in &isi.per_question {
        println!(
            "  {:<16} P_pre={:.2} P_post={:.2} ISI={:+.2}",
            q.problem.as_str(),
            q.p_pre,
            q.p_post,
            q.isi
        );
    }
    println!("exam-level ISI: {:+.3}", isi.exam_level);
    Ok(())
}
