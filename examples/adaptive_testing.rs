//! The §6 future-work extension in action: calibrate an item pool, run
//! computerized-adaptive tests against simulated students, compare
//! max-information selection with a random baseline, and emit learner
//! feedback.
//!
//! ```bash
//! cargo run --example adaptive_testing
//! ```

use mine_assessment::adaptive::{
    generate_feedback, AdaptiveTest, ItemPool, SelectionStrategy, StopRule,
};
use mine_assessment::core::{CognitionLevel, OptionKey, StudentId};
use mine_assessment::itembank::{ChoiceOption, Problem};
use mine_assessment::simulator::{CohortSpec, ItemParams};
use rand::Rng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A calibrated bank: 60 choice items laddered across difficulty.
    let mut pool = ItemPool::new();
    let mut problems = Vec::new();
    for i in 0..60 {
        let b = (i as f64 / 59.0) * 5.0 - 2.5;
        let id: mine_assessment::core::ProblemId = format!("item{i:02}").parse()?;
        pool.add(id.clone(), ItemParams::multiple_choice(1.4, b, 4));
        problems.push(
            Problem::multiple_choice(
                id.as_str(),
                format!("Calibrated item {i} (b = {b:.2})"),
                OptionKey::first(4).map(|k| ChoiceOption::new(k, format!("{k}"))),
                OptionKey::A,
            )?
            .with_subject(if i % 2 == 0 { "algorithms" } else { "systems" })
            .with_cognition_level(if i % 3 == 0 {
                CognitionLevel::Knowledge
            } else {
                CognitionLevel::Application
            }),
        );
    }

    // 2. Adaptive sittings for a spread of simulated students.
    let cohort = CohortSpec::new(6).ability(0.0, 1.2).seed(11).generate();
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    println!("student   true θ   est. θ   SE     items");
    for student in &cohort {
        let mut test = AdaptiveTest::new(pool.clone(), StopRule::default());
        while let Some((item, params)) = test.next_item() {
            let correct = rng.gen_bool(params.p_correct(student.ability));
            test.record(item, correct)?;
        }
        let estimate = test.estimate();
        println!(
            "{:<9} {:+.2}    {:+.2}    {:.2}   {}",
            student.id.as_str(),
            student.ability,
            estimate.theta,
            estimate.se,
            test.administered().len(),
        );
    }

    // 3. Ablation: adaptive vs. random selection at a fixed 12-item
    //    budget, averaged over a cohort.
    let budget = StopRule {
        min_items: 12,
        max_items: 12,
        se_target: 0.0,
    };
    let eval_cohort = CohortSpec::new(40).seed(5).generate();
    let mut adaptive_err = 0.0;
    let mut random_err = 0.0;
    for (i, student) in eval_cohort.iter().enumerate() {
        for (strategy, err) in [
            (SelectionStrategy::MaxInformation, &mut adaptive_err),
            (
                SelectionStrategy::Random { seed: i as u64 },
                &mut random_err,
            ),
        ] {
            let mut test = AdaptiveTest::with_strategy(pool.clone(), budget, strategy);
            let mut rng = rand::rngs::StdRng::seed_from_u64(1000 + i as u64);
            while let Some((item, params)) = test.next_item() {
                let correct = rng.gen_bool(params.p_correct(student.ability));
                test.record(item, correct)?;
            }
            *err += (test.estimate().theta - student.ability).powi(2);
        }
    }
    println!(
        "\n12-item budget RMSE: max-information {:.3} vs random {:.3}",
        (adaptive_err / eval_cohort.len() as f64).sqrt(),
        (random_err / eval_cohort.len() as f64).sqrt(),
    );

    // 4. Learner feedback from a fixed-form sitting.
    let student: StudentId = "alice".parse()?;
    let responses: Vec<mine_assessment::core::ItemResponse> = problems
        .iter()
        .take(20)
        .enumerate()
        .map(|(i, p)| {
            // alice is strong on algorithms, weak on systems.
            let correct = p.subject().as_str() == "algorithms" || i % 4 == 0;
            if correct {
                mine_assessment::core::ItemResponse::correct(
                    p.id().clone(),
                    mine_assessment::core::Answer::Choice(OptionKey::A),
                    1.0,
                )
            } else {
                mine_assessment::core::ItemResponse::incorrect(
                    p.id().clone(),
                    mine_assessment::core::Answer::Choice(OptionKey::B),
                    1.0,
                )
            }
        })
        .collect();
    let record = mine_assessment::core::StudentRecord::new(student, responses);
    let feedback = generate_feedback(&record, &problems, &pool);
    println!("\n{}", feedback.render());
    Ok(())
}
