//! The §6 adaptive-testing extension served over HTTP: calibrate an
//! item bank, start the delivery micro-service in-process, and drive
//! computerized-adaptive sittings for a simulated cohort through
//! `HttpClient` — one item at a time, the ability estimate refined
//! after every answer, stopping on the SE threshold or the item
//! budget — then pull the §4 analysis over the finished population.
//!
//! ```bash
//! cargo run --example adaptive_testing
//! ```

use std::collections::BTreeMap;

use mine_assessment::core::OptionKey;
use mine_assessment::itembank::{Calibration, ChoiceOption, Exam, Problem, Repository};
use mine_assessment::server::{HttpClient, Router, ServeOptions, Server};
use mine_assessment::simulator::{CohortSpec, ItemParams};
use rand::Rng;
use rand::SeedableRng;
use serde_json::Value;

fn as_f64(value: &Value, field: &str) -> f64 {
    let field = value
        .get(field)
        .unwrap_or_else(|| panic!("missing field {field}: {value:?}"));
    serde_json::to_string(field)
        .ok()
        .and_then(|text| text.parse().ok())
        .unwrap_or_else(|| panic!("field is not a number: {field:?}"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A calibrated bank: 40 four-option items laddered across
    //    difficulty, each carrying its 3PL parameters, collected into
    //    the exam `cat`. Option A is always the keyed answer.
    let repo = Repository::new();
    let mut builder = Exam::builder("cat")?;
    let mut params = BTreeMap::new();
    for i in 0..40 {
        let b = (i as f64 / 39.0) * 5.0 - 2.5;
        let id = format!("item{i:02}");
        params.insert(id.clone(), ItemParams::new(1.4, b, 0.25));
        repo.insert_problem(
            Problem::multiple_choice(
                id.as_str(),
                format!("Calibrated item {i} (b = {b:.2})"),
                OptionKey::first(4).map(|k| ChoiceOption::new(k, format!("{k}"))),
                OptionKey::A,
            )?
            .with_calibration(Calibration::new(1.4, b, 0.25)),
        )?;
        builder = builder.entry(id.parse()?);
    }
    repo.insert_exam(builder.build()?)?;

    // 2. Serve it. The same process is client and server here, but the
    //    wire format is the real one: loopback TCP, HTTP/1.1, JSON.
    let server = Server::start(Router::new(repo), &ServeOptions::default())?;
    let addr = server.local_addr().to_string();
    let mut client = HttpClient::connect(&addr)?;

    // 3. Adaptive sittings for a spread of simulated students, each
    //    driven over HTTP: answer the served item with probability
    //    p(θ) from the 3PL model, read back θ̂ and SE, repeat until
    //    the server says the stop rule fired.
    let cohort = CohortSpec::new(6).ability(0.0, 1.2).seed(11).generate();
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    println!("student   true θ   est. θ   SE     items");
    for (index, student) in cohort.iter().enumerate() {
        let started = client.post(
            "/sessions",
            &format!(
                "{{\"exam\":\"cat\",\"student\":\"{}\",\"seed\":{index},\
                 \"mode\":\"adaptive\",\"max_items\":12,\"se_threshold\":0.35}}",
                student.id.as_str()
            ),
        )?;
        assert_eq!(started.status, 201, "{}", started.body);
        let mut status: Value = started.json()?;
        let session = status
            .get("session")
            .and_then(Value::as_str)
            .expect("session id")
            .to_string();
        while !matches!(status.get("done"), Some(Value::Bool(true))) {
            let item = status
                .get("current")
                .and_then(|c| c.get("id"))
                .and_then(Value::as_str)
                .expect("active sitting serves an item");
            let p = params[item].p_correct(student.ability);
            let option = if rng.gen_bool(p) { "A" } else { "B" };
            let answered = client.post(
                &format!("/sessions/{session}/answers"),
                &format!("{{\"answer\":{{\"Choice\":\"{option}\"}},\"time_spent_secs\":9}}"),
            )?;
            assert_eq!(answered.status, 200, "{}", answered.body);
            status = answered.json()?;
        }
        println!(
            "{:<9} {:+.2}    {:+.2}    {:.2}   {}",
            student.id.as_str(),
            student.ability,
            as_f64(&status, "theta"),
            as_f64(&status, "se"),
            as_f64(&status, "steps"),
        );
        let finished = client.post(&format!("/sessions/{session}/finish"), "")?;
        assert_eq!(finished.status, 200, "{}", finished.body);
    }

    // 4. Every finished sitting was filed into the same store the
    //    fixed-form path uses, so the live §4 report covers the cohort.
    let analysis = client.get("/exams/cat/analysis")?;
    assert_eq!(analysis.status, 200, "{}", analysis.body);
    let analysis: Value = analysis.json()?;
    let summary = analysis.get("summary").expect("summary");
    println!(
        "\nanalysis: {} students, {} questions ({} green / {} yellow / {} red)",
        as_f64(summary, "students"),
        as_f64(summary, "questions"),
        as_f64(summary, "green"),
        as_f64(summary, "yellow"),
        as_f64(summary, "red"),
    );

    server.shutdown();
    Ok(())
}
