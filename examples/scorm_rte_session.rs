//! A learner's sitting through the SCORM lens: launch the RTE, answer
//! under the proctor's monitor, suspend mid-exam, resume from
//! `cmi.suspend_data`, and finish with score/status committed to the LMS.
//!
//! ```bash
//! cargo run --example scorm_rte_session
//! ```

use std::time::Duration;

use mine_assessment::core::{Answer, OptionKey};
use mine_assessment::delivery::{
    DeliveryOptions, ExamSession, MonitorEvent, MonitorHub, RteBridge, SessionCheckpoint,
    SnapshotPolicy,
};
use mine_assessment::itembank::{ChoiceOption, Exam, Problem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The exam and its problems.
    let problems: Vec<Problem> = (0..6)
        .map(|i| {
            Problem::multiple_choice(
                format!("q{i}"),
                format!("Question {i}"),
                OptionKey::first(4).map(|k| ChoiceOption::new(k, format!("{k}"))),
                OptionKey::A,
            )
            .unwrap()
        })
        .collect();
    let mut builder = Exam::builder("scorm-demo")?.title("SCORM session demo");
    for i in 0..6 {
        builder = builder.entry(format!("q{i}").parse()?);
    }
    let exam = builder.test_time(Duration::from_secs(1200)).build()?;

    // Launch: LMSInitialize + monitor attach.
    let hub = MonitorHub::new();
    let student: mine_assessment::core::StudentId = "alice".parse()?;
    let mut session = ExamSession::start(
        &exam,
        problems.clone(),
        student.clone(),
        DeliveryOptions::default(),
    )?;
    let mut monitor = hub.monitor(
        session.id().clone(),
        student.clone(),
        SnapshotPolicy {
            every_answers: 2,
            every_elapsed: Duration::from_secs(120),
            min_answer_time: Duration::ZERO,
        },
    );
    let mut bridge = RteBridge::launch(&student, "Alice Chen")?;
    println!("RTE state: {}", bridge.api().state());

    // First half of the sitting.
    for _ in 0..3 {
        let problem = session.current().unwrap().clone();
        let answer = Answer::Choice(OptionKey::A);
        let time = Duration::from_secs(40);
        session.answer(answer.clone(), time)?;
        bridge.record_answer(problem.id().as_str(), &answer, true, time)?;
        monitor.on_answer(session.elapsed());
    }

    // Suspend: checkpoint into cmi.suspend_data, LMSFinish(exit=suspend).
    let checkpoint = session.pause()?;
    monitor.on_pause();
    let suspend_json = serde_json::to_string(&checkpoint)?;
    let api = bridge.suspend(&suspend_json, session.elapsed())?;
    println!(
        "suspended after {} answers; suspend_data = {} bytes; total_time = {:?}",
        checkpoint.answers.len(),
        api.model().suspend_data.len(),
        api.model().total_time,
    );

    // Resume: rebuild the session from the LMS-stored suspend data.
    let restored: SessionCheckpoint = serde_json::from_str(&api.model().suspend_data)?;
    let mut resumed = ExamSession::resume(&exam, problems, restored)?;
    let mut model = api.model().clone();
    model.entry = "resume".into();
    let mut bridge = RteBridge::launch_with_model(model)?;
    println!(
        "resumed at question {} with {:?} elapsed",
        resumed.answered_count() + 1,
        resumed.elapsed(),
    );

    // Second half.
    while let Some(problem) = resumed.current().cloned() {
        let answer = Answer::Choice(if resumed.answered_count() % 2 == 0 {
            OptionKey::A
        } else {
            OptionKey::B
        });
        let time = Duration::from_secs(35);
        let correct = problem.grade(&answer)?.is_correct;
        resumed.answer(answer.clone(), time)?;
        bridge.record_answer(problem.id().as_str(), &answer, correct, time)?;
        monitor.on_answer(resumed.elapsed());
    }
    let record = resumed.finish()?;
    monitor.on_finish(record.attempted_count(), record.total_time);
    let api = bridge.finish(&record)?;

    println!(
        "\nfinal: score.raw = {:?}, lesson_status = {}, total_time = {:?}, commits = {}",
        api.model().score_raw,
        api.model().lesson_status,
        api.model().total_time,
        api.commit_count(),
    );
    println!("\nLMS-persisted elements:");
    for (element, value) in api.export_committed() {
        println!("  {element} = {value}");
    }

    println!("\nproctor saw:");
    for event in hub.drain() {
        match event {
            MonitorEvent::SessionStarted { student, .. } => {
                println!("  session started by {student}");
            }
            MonitorEvent::Snapshot { seq, at, frame, .. } => {
                println!("  snapshot #{seq} at {at:?} ({} bytes)", frame.len());
            }
            MonitorEvent::SessionPaused { .. } => println!("  session paused"),
            MonitorEvent::Flagged { reason, at, .. } => {
                println!("  FLAG at {at:?}: {reason}");
            }
            MonitorEvent::SessionFinished {
                answered,
                total_time,
                ..
            } => println!("  session finished: {answered} answered in {total_time:?}"),
        }
    }
    Ok(())
}
