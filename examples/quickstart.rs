//! Quickstart: author an exam, let a simulated class sit it, and run the
//! paper's analysis model end to end.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use mine_assessment::analysis::{render_signal_report, AnalysisConfig, ExamAnalysis};
use mine_assessment::core::{CognitionLevel, OptionKey};
use mine_assessment::itembank::{ChoiceOption, Exam, Problem};
use mine_assessment::simulator::{CohortSpec, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Author a six-question networking quiz.
    let mut problems = Vec::new();
    let subjects = ["tcp", "tcp", "routing", "routing", "dns", "dns"];
    let levels = [
        CognitionLevel::Knowledge,
        CognitionLevel::Knowledge,
        CognitionLevel::Comprehension,
        CognitionLevel::Application,
        CognitionLevel::Knowledge,
        CognitionLevel::Comprehension,
    ];
    for i in 0..6 {
        problems.push(
            Problem::multiple_choice(
                format!("q{i}"),
                format!("Question {i}: which answer is right?"),
                OptionKey::first(4).map(|k| ChoiceOption::new(k, format!("answer {k}"))),
                OptionKey::A,
            )?
            .with_subject(subjects[i])
            .with_cognition_level(levels[i]),
        );
    }
    let mut builder = Exam::builder("quickstart-quiz")?.title("Networking quickstart quiz");
    for i in 0..6 {
        builder = builder.entry(format!("q{i}").parse()?);
    }
    let exam = builder
        .test_time(std::time::Duration::from_secs(1800))
        .build()?;

    // 2. A class of 44 simulated students sits the exam (the paper's
    //    worked examples use a 44-student class with 11/11 groups).
    let record = Simulation::new(exam, problems.clone())
        .cohort(CohortSpec::new(44).seed(2004))
        .run()?;

    // 3. Run the §4 analysis and print the Figure 2 signal report.
    let analysis = ExamAnalysis::analyze(&record, &problems, &AnalysisConfig::default())?;
    println!("{}", render_signal_report(&analysis));

    // 4. The whole-test views.
    println!("Two-way specification table (Table 4):");
    println!("{}", analysis.two_way.render());
    println!(
        "cognition pyramid holds: {}",
        analysis.two_way.cognition_pyramid_ok()
    );
    println!(
        "mean score {:.2}/{:.0}, average time {:?}",
        analysis.statistics.mean_score,
        analysis.statistics.max_score,
        analysis.statistics.average_time,
    );
    Ok(())
}
