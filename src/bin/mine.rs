//! `mine` — the command-line face of the assessment authoring system.
//!
//! A hand-rolled CLI (the sanctioned dependency set has no argument
//! parser) exposing the §5 workflows over a JSON database file:
//!
//! ```text
//! mine init <db.json>                          create an empty database
//! mine add-tf <db> <id> <subject> <level> <true|false> <stem…>
//! mine add-choice <db> <id> <subject> <level> <correct> <stem> <opt>…
//! mine add-exam <db> <exam-id> <title> <problem-id>…
//! mine list <db>                               list problems and exams
//! mine search <db> <terms…>                    free-text search
//! mine export-scorm <db> <exam-id> <out-dir>   write a SCORM package tree
//! mine simulate <db> <exam-id> <class> <seed>  simulate a sitting, print the report
//! mine batch-analyze <db> <exam-id> <cohorts> <class> <seed> [--threads N]
//!                                              simulate many sittings, analyze them
//!                                              concurrently, print the batch summary
//! mine tree <db> <problem-id>                  print the Figure 1 metadata tree
//! mine serve <db> [--addr H:P] [--threads N] [--data-dir DIR]
//!            [--fsync POLICY] [--snapshot-every N] [--queue-depth N]
//!            [--rate-limit RPS[:BURST]] [--drain-deadline SECS]
//!            [--repl-addr H:P] [--replica-of H:P] [--replicate ack=leader|quorum]
//!            [--scrub-interval MS]
//!                                              serve the sitting lifecycle over HTTP;
//!                                              with --data-dir every session event is
//!                                              journaled to a durable WAL and replayed
//!                                              on restart. --repl-addr ships the WAL to
//!                                              followers; --replica-of mirrors a primary
//!                                              (reads served locally, writes answered
//!                                              421 naming the leader). SIGTERM/SIGINT
//!                                              drains: in-flight requests finish, active
//!                                              sessions pause through the journal, a
//!                                              final snapshot is written, exit 0
//! mine promote <addr>                          supervised failover: tell the follower at
//!                                              <addr> to stop following, bump its durable
//!                                              epoch, and start serving writes
//! mine recover <dir>                           inspect a journal directory offline:
//!                                              replay the log, repair torn tails,
//!                                              print the event summary
//! mine audit <dir>... [--db DB] [--json]       offline invariant check over one or more
//!                                              journal directories: per-node CRC/sequence/
//!                                              epoch integrity, cross-node acked-prefix
//!                                              containment, and (with --db) replay
//!                                              equality; non-zero exit on any violation;
//!                                              --json prints the machine-readable report
//! mine scrub <dir> [--json]                    offline anti-entropy pass: re-verify the
//!                                              CRC and framing of every WAL segment and
//!                                              the newest snapshot, print per-segment
//!                                              verdicts and the per-window range hashes;
//!                                              non-zero exit on corruption (same contract
//!                                              as audit)
//! mine calibrate <db> <problem-id> <a> <b> <c> attach 3PL item parameters to a problem
//! mine calibrate <db> --auto                   calibrate the whole bank with a spread
//!                                              of difficulties (adaptive delivery needs
//!                                              every served item calibrated)
//! mine loadgen <addr> <exam-id> [--clients N] [--seed S] [--ramp SECS]
//!              [--mode fixed|adaptive|mixed] [--db DB]
//!                                              drive a running server with concurrent
//!                                              deterministic clients; adaptive/mixed
//!                                              modes simulate IRT respondents and need
//!                                              --db to build the answer key
//! ```

use std::process::ExitCode;

use mine_assessment::analysis::{render_full_report, AnalysisConfig, BatchAnalyzer, ExamAnalysis};
use mine_assessment::core::{CognitionLevel, OptionKey};
use mine_assessment::itembank::{
    Calibration, ChoiceOption, Exam, Problem, Query, Repository, RepositorySnapshot,
};
use mine_assessment::scorm::ContentPackage;
use mine_assessment::server::{
    audit_dirs, decode_events, open_journaled_state, run_loadgen, start_follower, AckMode,
    AnswerKey, FailoverConfig, HttpClient, LoadGenOptions, LoadMode, RateLimit, ReplListener,
    ReplState, Role, Router, Scrubber, ServeOptions, Server, DEFAULT_FAILOVER_TIMEOUT,
    DEFAULT_SCRUB_INTERVAL,
};
use mine_assessment::simulator::{CohortSpec, Simulation};
use mine_assessment::store::{
    scrub_dir, EventStore, FaultPlan, ScrubReport, StoreOptions, SyncPolicy,
};
use serde::{Serialize, Value};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  mine init <db.json>
  mine add-tf <db> <id> <subject> <level A-F> <true|false> <stem...>
  mine add-choice <db> <id> <subject> <level A-F> <correct A-Z> <stem> <option>...
  mine add-exam <db> <exam-id> <title> <problem-id>...
  mine list <db>
  mine search <db> <terms>...
  mine export-scorm <db> <exam-id> <out-dir>
  mine simulate <db> <exam-id> <class-size> <seed>
  mine batch-analyze <db> <exam-id> <cohorts> <class-size> <seed> [--threads N]
  mine tree <db> <problem-id>
  mine serve <db> [--addr HOST:PORT] [--threads N] [--data-dir DIR]
             [--fsync always|never|interval[:ms]] [--snapshot-every N]
             [--queue-depth N] [--rate-limit RPS[:BURST]] [--drain-deadline SECS]
             [--repl-addr HOST:PORT] [--replica-of HOST:PORT]
             [--replicate ack=leader|ack=quorum]
             [--auto-failover[=TIMEOUT_MS]] [--peers HOST:PORT,...]
             [--scrub-interval MS]
  mine promote <addr>
  mine recover <dir>
  mine audit <dir>... [--db DB] [--json]
  mine scrub <dir> [--json]
  mine calibrate <db> <problem-id> <a> <b> <c>
  mine calibrate <db> --auto
  mine loadgen <addr> <exam-id> [--clients N] [--seed S] [--ramp SECS]
               [--mode fixed|adaptive|mixed] [--db DB]

--threads takes 1..=1024 (omit for auto); MINE_THREADS sets the same
default for every command when the flag is absent.";

type CliResult = Result<(), String>;

/// Writes a large block to stdout, ignoring broken pipes (so
/// `mine simulate … | head` exits cleanly).
fn print_block(text: &str) {
    use std::io::Write;
    let _ = std::io::stdout().write_all(text.as_bytes());
}

fn run(args: &[String]) -> CliResult {
    let (command, rest) = args.split_first().ok_or("missing command")?;
    match command.as_str() {
        "init" => init(rest),
        "add-tf" => add_tf(rest),
        "add-choice" => add_choice(rest),
        "add-exam" => add_exam(rest),
        "list" => list(rest),
        "search" => search(rest),
        "export-scorm" => export_scorm(rest),
        "simulate" => simulate(rest),
        "batch-analyze" => batch_analyze(rest),
        "tree" => tree(rest),
        "serve" => serve(rest),
        "promote" => promote(rest),
        "recover" => recover(rest),
        "audit" => audit(rest),
        "scrub" => scrub(rest),
        "calibrate" => calibrate(rest),
        "loadgen" => loadgen(rest),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn load(path: &str) -> Result<Repository, String> {
    let snapshot =
        RepositorySnapshot::load(path).map_err(|err| format!("loading {path}: {err}"))?;
    snapshot
        .restore()
        .map_err(|err| format!("restoring {path}: {err}"))
}

fn save(repository: &Repository, path: &str) -> CliResult {
    RepositorySnapshot::capture(repository)
        .save(path)
        .map_err(|err| format!("saving {path}: {err}"))
}

fn parse_level(letter: &str) -> Result<CognitionLevel, String> {
    letter
        .parse::<CognitionLevel>()
        .map_err(|err| err.to_string())
}

fn init(args: &[String]) -> CliResult {
    let [path] = args else {
        return Err("init needs <db.json>".into());
    };
    save(&Repository::new(), path)?;
    println!("created empty database at {path}");
    Ok(())
}

fn add_tf(args: &[String]) -> CliResult {
    let [path, id, subject, level, correct, stem @ ..] = args else {
        return Err("add-tf needs <db> <id> <subject> <level> <true|false> <stem...>".into());
    };
    if stem.is_empty() {
        return Err("add-tf needs a stem".into());
    }
    let correct = match correct.as_str() {
        "true" => true,
        "false" => false,
        other => return Err(format!("expected true|false, got {other:?}")),
    };
    let repository = load(path)?;
    let problem = Problem::true_false(id.clone(), stem.join(" "), correct)
        .map_err(|err| err.to_string())?
        .with_subject(subject.as_str())
        .with_cognition_level(parse_level(level)?);
    repository
        .insert_problem(problem)
        .map_err(|err| err.to_string())?;
    save(&repository, path)?;
    println!("added true/false problem {id}");
    Ok(())
}

fn add_choice(args: &[String]) -> CliResult {
    let [path, id, subject, level, correct, stem, options @ ..] = args else {
        return Err(
            "add-choice needs <db> <id> <subject> <level> <correct> <stem> <option>...".into(),
        );
    };
    if options.len() < 2 {
        return Err("add-choice needs at least two options".into());
    }
    let correct = correct
        .parse::<OptionKey>()
        .map_err(|err| err.to_string())?;
    let repository = load(path)?;
    let problem = Problem::multiple_choice(
        id.clone(),
        stem.clone(),
        options
            .iter()
            .enumerate()
            .map(|(i, text)| ChoiceOption::new(OptionKey::from_index(i).expect("<26"), text)),
        correct,
    )
    .map_err(|err| err.to_string())?
    .with_subject(subject.as_str())
    .with_cognition_level(parse_level(level)?);
    repository
        .insert_problem(problem)
        .map_err(|err| err.to_string())?;
    save(&repository, path)?;
    println!("added choice problem {id} with {} options", options.len());
    Ok(())
}

fn add_exam(args: &[String]) -> CliResult {
    let [path, exam_id, title, problems @ ..] = args else {
        return Err("add-exam needs <db> <exam-id> <title> <problem-id>...".into());
    };
    if problems.is_empty() {
        return Err("add-exam needs at least one problem".into());
    }
    let repository = load(path)?;
    let mut builder = Exam::builder(exam_id.clone())
        .map_err(|err| err.to_string())?
        .title(title.clone());
    for problem in problems {
        builder = builder.entry(problem.parse().map_err(|err| format!("{err}"))?);
    }
    let exam = builder.build().map_err(|err| err.to_string())?;
    repository
        .insert_exam(exam)
        .map_err(|err| err.to_string())?;
    save(&repository, path)?;
    println!("added exam {exam_id} with {} entries", problems.len());
    Ok(())
}

fn list(args: &[String]) -> CliResult {
    let [path] = args else {
        return Err("list needs <db>".into());
    };
    let repository = load(path)?;
    println!("problems ({}):", repository.problem_count());
    for id in repository.problem_ids() {
        let problem = repository.problem(&id).map_err(|err| err.to_string())?;
        println!(
            "  {:<16} {:<16} {:<14} {}",
            id.as_str(),
            problem.style().keyword(),
            problem.subject().as_str(),
            problem
                .cognition_level()
                .map_or("-".to_string(), |l| l.name().to_string()),
        );
    }
    println!("exams ({}):", repository.exam_count());
    for id in repository.exam_ids() {
        let exam = repository.exam(&id).map_err(|err| err.to_string())?;
        println!(
            "  {:<16} \"{}\" ({} entries)",
            id.as_str(),
            exam.title(),
            exam.len()
        );
    }
    Ok(())
}

fn search(args: &[String]) -> CliResult {
    let [path, terms @ ..] = args else {
        return Err("search needs <db> <terms>...".into());
    };
    if terms.is_empty() {
        return Err("search needs at least one term".into());
    }
    let repository = load(path)?;
    let hits = repository.search(&Query::text(&terms.join(" ")));
    println!("{} hit(s):", hits.len());
    for hit in hits {
        println!("  {:<16} score {}", hit.problem.as_str(), hit.score);
    }
    Ok(())
}

fn export_scorm(args: &[String]) -> CliResult {
    let [path, exam_id, out_dir] = args else {
        return Err("export-scorm needs <db> <exam-id> <out-dir>".into());
    };
    let repository = load(path)?;
    let (exam, problems) = repository
        .resolve_exam(&exam_id.parse().map_err(|err| format!("{err}"))?)
        .map_err(|err| err.to_string())?;
    let package = ContentPackage::builder(format!("PKG-{exam_id}"))
        .exam(exam)
        .problems(problems)
        .build()
        .map_err(|err| err.to_string())?;
    package
        .write_to_dir(out_dir)
        .map_err(|err| format!("writing {out_dir}: {err}"))?;
    println!(
        "wrote {} files ({} bytes) under {out_dir}",
        package.files.len(),
        package.total_size(),
    );
    Ok(())
}

fn simulate(args: &[String]) -> CliResult {
    let [path, exam_id, class, seed] = args else {
        return Err("simulate needs <db> <exam-id> <class-size> <seed>".into());
    };
    let class: usize = class.parse().map_err(|_| "class-size must be a number")?;
    let seed: u64 = seed.parse().map_err(|_| "seed must be a number")?;
    let repository = load(path)?;
    let (exam, problems) = repository
        .resolve_exam(&exam_id.parse().map_err(|err| format!("{err}"))?)
        .map_err(|err| err.to_string())?;
    let record = Simulation::new(exam, problems.clone())
        .cohort(CohortSpec::new(class).seed(seed))
        .run()
        .map_err(|err| err.to_string())?;
    let analysis = ExamAnalysis::analyze(&record, &problems, &AnalysisConfig::default())
        .map_err(|err| err.to_string())?;
    print_block(&render_full_report(&analysis));
    Ok(())
}

fn batch_analyze(args: &[String]) -> CliResult {
    // Split off a trailing `--threads N`. The flag wins over the
    // `MINE_THREADS` environment override; both are validated (1..=1024,
    // no zero), and absent both the pool auto-detects.
    let (threads_flag, args) = match args {
        [rest @ .., flag, n] if flag == "--threads" => (Some(n.as_str()), rest),
        _ => (None, args),
    };
    let threads = mine_pool::resolve_thread_count(threads_flag).map_err(|err| err.to_string())?;
    let [path, exam_id, cohorts, class, seed] = args else {
        return Err(
            "batch-analyze needs <db> <exam-id> <cohorts> <class-size> <seed> [--threads N]".into(),
        );
    };
    let cohorts: usize = cohorts.parse().map_err(|_| "cohorts must be a number")?;
    if cohorts == 0 {
        return Err("batch-analyze needs at least one cohort".into());
    }
    let class: usize = class.parse().map_err(|_| "class-size must be a number")?;
    let seed: u64 = seed.parse().map_err(|_| "seed must be a number")?;
    let repository = load(path)?;
    let (exam, problems) = repository
        .resolve_exam(&exam_id.parse().map_err(|err| format!("{err}"))?)
        .map_err(|err| err.to_string())?;

    // One sitting per cohort, each a different section of the class
    // (consecutive seeds), simulated concurrently.
    let records = (0..cohorts)
        .map(|i| {
            Simulation::new(exam.clone(), problems.clone())
                .cohort(CohortSpec::new(class).seed(seed.wrapping_add(i as u64)))
                .run_parallel(threads)
                .map_err(|err| err.to_string())
        })
        .collect::<Result<Vec<_>, _>>()?;

    let analyzer = BatchAnalyzer::new(AnalysisConfig::default()).with_threads(threads);
    let report = analyzer
        .analyze_records(&records, &problems)
        .map_err(|err| err.to_string())?;

    let mut out = String::new();
    out.push_str(&format!(
        "batch: {} sittings of {exam_id} ({} students each)\n\n",
        report.summary.exams, class
    ));
    for (i, analysis) in report.analyses.iter().enumerate() {
        out.push_str(&format!(
            "  sitting {:<3} seed {:<6} mean {:>6.2}  pass {:>5.1}%  alpha {}\n",
            i,
            seed.wrapping_add(i as u64),
            analysis.statistics.mean_score,
            analysis.statistics.pass_rate * 100.0,
            analysis
                .reliability
                .alpha
                .map_or("  n/a".to_string(), |a| format!("{a:>5.2}")),
        ));
    }
    let s = &report.summary;
    out.push_str(&format!(
        "\nquestions analyzed: {} (green {}, yellow {}, red {})\n",
        s.questions, s.green, s.yellow, s.red
    ));
    if let (Some(min), Some(mean), Some(max)) = (s.min_alpha, s.mean_alpha, s.max_alpha) {
        out.push_str(&format!(
            "reliability alpha:  min {min:.2}  mean {mean:.2}  max {max:.2}\n"
        ));
    }
    let stats = analyzer.cache_stats();
    out.push_str(&format!(
        "cache: {} hits, {} misses, {} resident\n",
        stats.hits, stats.misses, stats.entries
    ));
    print_block(&out);
    Ok(())
}

/// SIGTERM/SIGINT handling for `mine serve`, without libc: a minimal
/// `signal(2)` binding installing an async-signal-safe handler that
/// only flips an atomic. The serve loop polls the flag and runs the
/// drain sequence in ordinary (non-handler) context.
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set by the handler when SIGTERM or SIGINT arrives.
    pub static REQUESTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // A store to an atomic is async-signal-safe; everything else
        // (drain, snapshot, I/O) happens on the polling thread.
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Installs the handler for SIGTERM and SIGINT.
    pub fn install() {
        // SAFETY: `signal` with a handler that only stores to a static
        // atomic; no allocation, locking, or I/O in handler context.
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

/// Pulls a `--name value` pair out of `args`, returning the value and
/// the remaining arguments.
fn take_flag(args: &[String], name: &str) -> Result<(Option<String>, Vec<String>), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut value = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == name {
            let v = iter.next().ok_or_else(|| format!("{name} needs a value"))?;
            value = Some(v.clone());
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((value, rest))
}

/// Pulls a `--name` / `--name=value` flag out of `args`. The outer
/// `Option` is presence; the inner one is whether a value was attached.
fn take_optional_value_flag(args: &[String], name: &str) -> (Option<Option<String>>, Vec<String>) {
    let mut rest = Vec::with_capacity(args.len());
    let mut value = None;
    let prefix = format!("{name}=");
    for arg in args {
        if arg == name {
            value = Some(None);
        } else if let Some(attached) = arg.strip_prefix(&prefix) {
            value = Some(Some(attached.to_string()));
        } else {
            rest.push(arg.clone());
        }
    }
    (value, rest)
}

fn serve(args: &[String]) -> CliResult {
    let (addr, args) = take_flag(args, "--addr")?;
    let (threads, args) = take_flag(&args, "--threads")?;
    let (data_dir, args) = take_flag(&args, "--data-dir")?;
    let (fsync, args) = take_flag(&args, "--fsync")?;
    let (snapshot_every, args) = take_flag(&args, "--snapshot-every")?;
    let (queue_depth, args) = take_flag(&args, "--queue-depth")?;
    let (rate_limit, args) = take_flag(&args, "--rate-limit")?;
    let (drain_deadline, args) = take_flag(&args, "--drain-deadline")?;
    let (repl_addr, args) = take_flag(&args, "--repl-addr")?;
    let (replica_of, args) = take_flag(&args, "--replica-of")?;
    let (replicate, args) = take_flag(&args, "--replicate")?;
    let (auto_failover, args) = take_optional_value_flag(&args, "--auto-failover");
    let (peers, args) = take_flag(&args, "--peers")?;
    let (scrub_interval, args) = take_flag(&args, "--scrub-interval")?;
    let [path] = args.as_slice() else {
        return Err(
            "serve needs <db> [--addr HOST:PORT] [--threads N] [--data-dir DIR] \
             [--fsync POLICY] [--snapshot-every N] [--queue-depth N] \
             [--rate-limit RPS[:BURST]] [--drain-deadline SECS] \
             [--repl-addr HOST:PORT] [--replica-of HOST:PORT] \
             [--replicate ack=leader|ack=quorum] \
             [--auto-failover[=TIMEOUT_MS]] [--peers HOST:PORT,...] \
             [--scrub-interval MS]"
                .into(),
        );
    };
    if data_dir.is_none() && (fsync.is_some() || snapshot_every.is_some()) {
        return Err("--fsync and --snapshot-every require --data-dir".into());
    }
    // The scrubber re-reads sealed WAL segments; without a journal there
    // is nothing to scrub.
    if scrub_interval.is_some() && data_dir.is_none() {
        return Err("--scrub-interval requires --data-dir".into());
    }
    let scrub_interval = scrub_interval
        .map(|ms| {
            ms.parse::<u64>()
                .map(std::time::Duration::from_millis)
                .map_err(|_| "--scrub-interval takes whole milliseconds (0 disables)".to_string())
        })
        .transpose()?
        .unwrap_or(DEFAULT_SCRUB_INTERVAL);
    // Replication rides on the journal: a follower must journal what it
    // applies, a primary must have a log to ship.
    if data_dir.is_none() && (repl_addr.is_some() || replica_of.is_some()) {
        return Err("--repl-addr and --replica-of require --data-dir".into());
    }
    if replicate.is_some() && repl_addr.is_none() {
        return Err("--replicate requires --repl-addr".into());
    }
    if auto_failover.is_some() && replica_of.is_none() {
        return Err(
            "--auto-failover requires --replica-of (only followers run the detector)".into(),
        );
    }
    if peers.is_some() && auto_failover.is_none() {
        return Err("--peers requires --auto-failover".into());
    }
    let failover_timeout = auto_failover
        .map(|value| match value {
            None => Ok(DEFAULT_FAILOVER_TIMEOUT),
            Some(ms) => ms
                .parse::<u64>()
                .map(std::time::Duration::from_millis)
                .map_err(|_| "--auto-failover takes whole milliseconds".to_string()),
        })
        .transpose()?;
    let peer_list: Vec<String> = peers
        .map(|list| {
            list.split(',')
                .map(str::trim)
                .filter(|peer| !peer.is_empty())
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    let ack_mode = replicate
        .as_deref()
        .map(AckMode::parse)
        .transpose()?
        .unwrap_or(AckMode::Leader);
    let drain_deadline = std::time::Duration::from_secs(
        drain_deadline
            .map(|n| {
                n.parse::<u64>()
                    .map_err(|_| "--drain-deadline needs whole seconds")
            })
            .transpose()?
            .unwrap_or(10),
    );
    let mut overload = mine_assessment::server::OverloadOptions::default();
    if let Some(depth) = queue_depth {
        overload.queue_depth = depth
            .parse::<usize>()
            .ok()
            .filter(|&d| d > 0)
            .ok_or("--queue-depth needs a positive number")?;
    }
    if let Some(limit) = rate_limit {
        overload.rate_limit = Some(RateLimit::parse(&limit)?);
    }
    let options = ServeOptions {
        addr: addr.unwrap_or_else(|| "127.0.0.1:7400".to_string()),
        threads: mine_pool::resolve_thread_count(threads.as_deref())
            .map_err(|err| err.to_string())?,
        overload,
        ..ServeOptions::default()
    };
    let repository = load(path)?;
    println!(
        "serving {} problem(s), {} exam(s) from {path}",
        repository.problem_count(),
        repository.exam_count()
    );
    // A seeded chaos schedule (tests, smoke scripts): one spec drives
    // both the disk seam and the replication-shipping seam. Echo the
    // canonical form so any run can be reproduced from its log.
    let fault_plan = FaultPlan::from_env()?.map(std::sync::Arc::new);
    if let Some(plan) = &fault_plan {
        eprintln!("fault injection armed from MINE_FAULT_PLAN: {plan}");
    }
    let journaled = data_dir.is_some();
    let router = match data_dir {
        None => Router::new(repository),
        Some(dir) => {
            let store_options = StoreOptions {
                sync: fsync
                    .as_deref()
                    .map(SyncPolicy::parse)
                    .transpose()?
                    .unwrap_or(SyncPolicy::Interval(std::time::Duration::from_millis(100))),
                fault_plan: fault_plan.clone(),
                ..StoreOptions::default()
            };
            let snapshot_every = snapshot_every
                .map(|n| {
                    n.parse::<u64>()
                        .map_err(|_| "--snapshot-every needs a number")
                })
                .transpose()?
                .unwrap_or(512);
            let (mut state, report) =
                open_journaled_state(repository, &dir, store_options, snapshot_every)?;
            for warning in &report.warnings {
                eprintln!("journal: warning: {warning}");
            }
            for note in &report.notes {
                eprintln!("journal: note: {note}");
            }
            println!(
                "journal at {dir}: {} session(s) + {} record(s) from snapshot, {} event(s) replayed",
                report.snapshot_sessions, report.snapshot_records, report.events_replayed
            );
            if repl_addr.is_some() || replica_of.is_some() {
                let role = if replica_of.is_some() {
                    Role::Follower
                } else {
                    Role::Primary
                };
                state.repl = Some(std::sync::Arc::new(ReplState::new(role, ack_mode)));
            }
            Router::with_state(state)
        }
    };
    let server = Server::start(router.clone(), &options)
        .map_err(|err| format!("binding {}: {err}", options.addr))?;
    signals::install();
    println!(
        "listening on http://{} (SIGTERM/ctrl-c drains, deadline {}s)",
        server.local_addr(),
        drain_deadline.as_secs()
    );
    let mut repl_listener = None;
    let mut puller = None;
    if router.state().repl.is_some() {
        let repl = router.state().repl.as_ref().expect("just checked");
        // What follower redirects will name as the leader.
        repl.set_advertise(server.local_addr().to_string());
        if let Some(plan) = &fault_plan {
            repl.set_fault_plan(std::sync::Arc::clone(plan));
        }
        if let Some(timeout) = failover_timeout {
            repl.set_auto_failover(FailoverConfig {
                timeout,
                peers: peer_list.clone(),
            });
            println!(
                "auto-failover armed: leader-silence timeout {}ms (+ up to 25% jitter), {} peer(s)",
                timeout.as_millis(),
                peer_list.len()
            );
        }
        if let Some(bind) = &repl_addr {
            let listener = ReplListener::start(bind, router.clone())
                .map_err(|err| format!("binding replication listener {bind}: {err}"))?;
            println!("replication listener on {}", listener.local_addr());
            repl_listener = Some(listener);
        }
        if let Some(primary) = replica_of {
            println!("replica of {primary} (writes answered 421 naming the leader)");
            puller = Some(start_follower(primary, router.clone()));
        }
    }
    let scrubber = (journaled && !scrub_interval.is_zero()).then(|| {
        println!(
            "anti-entropy scrubber armed: pass every {}ms",
            scrub_interval.as_millis()
        );
        Scrubber::start(router.clone(), scrub_interval)
    });
    // Poll the signal flag; everything non-trivial happens here, not in
    // handler context.
    while !signals::REQUESTED.load(std::sync::atomic::Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    eprintln!("signal received: draining");
    // Stop the scrubber first: a repair snapshot mid-drain would race
    // the drain's own final snapshot.
    if let Some(scrubber) = scrubber {
        scrubber.shutdown();
    }
    // Wind replication down before the drain writes its final events:
    // the puller stops applying, the listener stops accepting.
    if let Some(repl) = router.state().repl.as_ref() {
        repl.stop_puller();
    }
    if let Some(puller) = puller {
        puller.join();
    }
    if let Some(listener) = repl_listener {
        listener.shutdown();
    }
    let report = server.drain(drain_deadline);
    println!(
        "drained: cleanly={} paused={} already-paused={} snapshot={}",
        report.drained_cleanly,
        report.sessions_paused,
        report.sessions_already_paused,
        report.snapshot_written
    );
    for note in &report.notes {
        eprintln!("drain: note: {note}");
    }
    Ok(())
}

fn promote(args: &[String]) -> CliResult {
    let [addr] = args else {
        return Err("promote needs <addr> (the follower's client-facing HOST:PORT)".into());
    };
    let mut client =
        HttpClient::connect(addr).map_err(|err| format!("connecting {addr}: {err}"))?;
    let response = client
        .post("/admin/promote", "")
        .map_err(|err| format!("promoting {addr}: {err}"))?;
    if response.status != 200 {
        return Err(format!(
            "promotion refused ({}): {}",
            response.status, response.body
        ));
    }
    println!("promoted {addr}: {}", response.body);
    Ok(())
}

fn recover(args: &[String]) -> CliResult {
    let [dir] = args else {
        return Err("recover needs <dir>".into());
    };
    let (_, recovered) = EventStore::open(std::path::PathBuf::from(dir), StoreOptions::default())
        .map_err(|err| format!("opening journal at {dir}: {err}"))?;
    let mut out = String::new();
    for warning in &recovered.warnings {
        out.push_str(&format!("warning: {warning} (repaired)\n"));
    }
    match &recovered.snapshot {
        Some(snapshot) => out.push_str(&format!(
            "snapshot: through seq {}, {} byte(s)\n",
            snapshot.last_seq,
            snapshot.payload.len()
        )),
        None => out.push_str("snapshot: none\n"),
    }
    let events = decode_events(&recovered)?;
    out.push_str(&format!(
        "segments: {}\nevents after snapshot: {}\n",
        recovered.segments,
        events.len()
    ));
    let mut counts = std::collections::BTreeMap::new();
    for (_, event) in &events {
        *counts.entry(event.label()).or_insert(0_u64) += 1;
    }
    for (label, count) in &counts {
        out.push_str(&format!("  {label}: {count}\n"));
    }
    if let Some((seq, event)) = events.last() {
        out.push_str(&format!("last event: seq {seq} {}\n", event.label()));
    }
    print_block(&out);
    Ok(())
}

/// Offline invariant check over journal directories: per-node
/// CRC/sequence/epoch integrity, cross-node acked-prefix containment,
/// and (with `--db`) replay equality. Exits non-zero on any violation,
/// so chaos and smoke scenarios can end with `mine audit` as their
/// verdict.
fn audit(args: &[String]) -> CliResult {
    let (json, args) = take_optional_value_flag(args, "--json");
    if json.as_ref().is_some_and(|value| value.is_some()) {
        return Err("--json takes no value".into());
    }
    let (db, args) = take_flag(&args, "--db")?;
    if args.is_empty() {
        return Err("audit needs <dir>... [--db DB] [--json]".into());
    }
    let dirs: Vec<std::path::PathBuf> = args.iter().map(std::path::PathBuf::from).collect();
    for dir in &dirs {
        if !dir.is_dir() {
            return Err(format!("audit: {} is not a directory", dir.display()));
        }
    }
    let report = match db {
        Some(path) => {
            let loader = move || load(&path);
            audit_dirs(&dirs, Some(&loader))?
        }
        None => audit_dirs(&dirs, None)?,
    };
    if json.is_some() {
        let rendered = serde_json::to_string(&report.to_value()).map_err(|err| err.to_string())?;
        print_block(&format!("{rendered}\n"));
    } else {
        print_block(&report.render());
    }
    if report.is_clean() {
        Ok(())
    } else {
        // The violations are already in the rendered report; the error
        // line is the machine-checkable verdict.
        Err(format!(
            "audit found {} violation(s)",
            report.violations().len()
        ))
    }
}

/// Offline anti-entropy pass over one journal directory: re-verify the
/// CRC and framing of every WAL segment and the newest snapshot, and
/// print per-segment verdicts plus the per-window range hashes. The
/// exit-code contract matches `mine audit`: non-zero when corruption is
/// found, so scripts can end with `mine scrub` as their verdict.
fn scrub(args: &[String]) -> CliResult {
    let (json, args) = take_optional_value_flag(args, "--json");
    if json.as_ref().is_some_and(|value| value.is_some()) {
        return Err("--json takes no value".into());
    }
    let [dir] = args.as_slice() else {
        return Err("scrub needs <dir> [--json]".into());
    };
    let path = std::path::Path::new(dir);
    if !path.is_dir() {
        return Err(format!("scrub: {dir} is not a directory"));
    }
    // Offline: no active segment to skip — the torn-tail tolerance for
    // the newest segment lives inside `scrub_dir`.
    let report = scrub_dir(path, None).map_err(|err| format!("scrubbing {dir}: {err}"))?;
    if json.is_some() {
        let rendered =
            serde_json::to_string(&scrub_value(&report)).map_err(|err| err.to_string())?;
        print_block(&format!("{rendered}\n"));
    } else {
        print_block(&render_scrub(&report));
    }
    if report.is_clean() {
        Ok(())
    } else {
        let corrupt = report.corrupt_segments().len()
            + usize::from(
                report
                    .snapshot
                    .as_ref()
                    .is_some_and(|snapshot| snapshot.corrupt.is_some()),
            );
        Err(format!("scrub found {corrupt} corrupt file(s)"))
    }
}

/// Human-readable `mine scrub` output: one line per file, then the
/// range-hash summary and the verdict.
fn render_scrub(report: &ScrubReport) -> String {
    let mut out = String::new();
    for segment in &report.segments {
        match &segment.corrupt {
            None => out.push_str(&format!(
                "segment {}: {} record(s) from seq {}, {} byte(s), clean\n",
                segment.file, segment.records, segment.first_seq, segment.bytes
            )),
            Some(reason) => out.push_str(&format!("segment {}: CORRUPT: {reason}\n", segment.file)),
        }
    }
    match &report.snapshot {
        Some(snapshot) => match &snapshot.corrupt {
            None => out.push_str(&format!(
                "snapshot {}: through seq {}, {} byte(s), clean\n",
                snapshot.file, snapshot.last_seq, snapshot.bytes
            )),
            Some(reason) => {
                out.push_str(&format!("snapshot {}: CORRUPT: {reason}\n", snapshot.file));
            }
        },
        None => out.push_str("snapshot: none\n"),
    }
    out.push_str(&format!(
        "range hashes: {} window(s)\n",
        report.ranges.len()
    ));
    if report.is_clean() {
        out.push_str("scrub: clean\n");
    } else {
        out.push_str("scrub: corruption found\n");
    }
    out
}

/// The machine-readable form of a scrub report (`mine scrub --json`).
fn scrub_value(report: &ScrubReport) -> Value {
    let optional_reason = |reason: &Option<String>| {
        reason
            .as_ref()
            .map_or(Value::Null, |reason| Value::String(reason.clone()))
    };
    let segments = Value::Array(
        report
            .segments
            .iter()
            .map(|segment| {
                Value::Object(vec![
                    ("file".to_string(), Value::String(segment.file.clone())),
                    ("first_seq".to_string(), segment.first_seq.to_value()),
                    ("records".to_string(), segment.records.to_value()),
                    ("bytes".to_string(), segment.bytes.to_value()),
                    ("corrupt".to_string(), optional_reason(&segment.corrupt)),
                ])
            })
            .collect(),
    );
    let ranges = Value::Array(
        report
            .ranges
            .iter()
            .map(|range| {
                Value::Object(vec![
                    ("first_seq".to_string(), range.first_seq.to_value()),
                    ("last_seq".to_string(), range.last_seq.to_value()),
                    ("count".to_string(), range.count.to_value()),
                    ("hash".to_string(), range.hash.to_value()),
                ])
            })
            .collect(),
    );
    let snapshot = report.snapshot.as_ref().map_or(Value::Null, |snapshot| {
        Value::Object(vec![
            ("file".to_string(), Value::String(snapshot.file.clone())),
            ("last_seq".to_string(), snapshot.last_seq.to_value()),
            ("bytes".to_string(), snapshot.bytes.to_value()),
            ("corrupt".to_string(), optional_reason(&snapshot.corrupt)),
        ])
    });
    Value::Object(vec![
        ("clean".to_string(), Value::Bool(report.is_clean())),
        ("segments".to_string(), segments),
        ("ranges".to_string(), ranges),
        ("snapshot".to_string(), snapshot),
    ])
}

/// Attaches 3PL item parameters to one problem, or (`--auto`) sweeps
/// the whole bank with a spread of difficulties so an exam can be
/// served adaptively without hand-calibrating every item.
fn calibrate(args: &[String]) -> CliResult {
    match args {
        [path, auto] if auto == "--auto" => {
            let repository = load(path)?;
            let ids = repository.problem_ids();
            let n = ids.len();
            if n == 0 {
                return Err("calibrate --auto needs a non-empty bank".into());
            }
            for (i, id) in ids.iter().enumerate() {
                // Constant discrimination and guessing, difficulties
                // spread evenly over [-2, 2]: a usable default sweep.
                let difficulty = if n == 1 {
                    0.0
                } else {
                    -2.0 + 4.0 * i as f64 / (n - 1) as f64
                };
                repository
                    .update_problem(id, |problem| {
                        problem.set_calibration(Some(Calibration::new(1.2, difficulty, 0.15)));
                        Ok(())
                    })
                    .map_err(|err| err.to_string())?;
            }
            save(&repository, path)?;
            println!("calibrated {n} problem(s): a=1.2, b spread over [-2, 2], c=0.15");
            Ok(())
        }
        [path, id, a, b, c] => {
            let parse = |name: &str, text: &str| -> Result<f64, String> {
                text.parse::<f64>()
                    .map_err(|_| format!("{name} must be a number, got {text:?}"))
            };
            let calibration = Calibration::new(
                parse("a (discrimination)", a)?,
                parse("b (difficulty)", b)?,
                parse("c (guessing)", c)?,
            );
            if !calibration.is_usable() {
                return Err("calibration must have finite a > 0, finite b, and c in [0, 1)".into());
            }
            let repository = load(path)?;
            repository
                .update_problem(&id.parse().map_err(|err| format!("{err}"))?, |problem| {
                    problem.set_calibration(Some(calibration));
                    Ok(())
                })
                .map_err(|err| err.to_string())?;
            save(&repository, path)?;
            println!(
                "calibrated {id}: a={}, b={}, c={}",
                calibration.discrimination, calibration.difficulty, calibration.guessing
            );
            Ok(())
        }
        _ => Err("calibrate needs <db> <problem-id> <a> <b> <c> or <db> --auto".into()),
    }
}

fn loadgen(args: &[String]) -> CliResult {
    let (clients, args) = take_flag(args, "--clients")?;
    let (seed, args) = take_flag(&args, "--seed")?;
    let (ramp, args) = take_flag(&args, "--ramp")?;
    let (mode, args) = take_flag(&args, "--mode")?;
    let (db, args) = take_flag(&args, "--db")?;
    let [addr, exam] = args.as_slice() else {
        return Err(
            "loadgen needs <addr> <exam-id> [--clients N] [--seed S] [--ramp SECS] \
             [--mode fixed|adaptive|mixed] [--db DB]"
                .into(),
        );
    };
    let mode = mode
        .as_deref()
        .map(LoadMode::parse)
        .transpose()?
        .unwrap_or_default();
    let key = match (mode, db) {
        (LoadMode::Fixed, _) => None,
        (_, Some(path)) => {
            let key = AnswerKey::from_repository(&load(&path)?);
            if key.calibrated() == 0 {
                return Err(format!(
                    "{path} has no calibrated problems; run `mine calibrate {path} --auto` first"
                ));
            }
            Some(std::sync::Arc::new(key))
        }
        (_, None) => {
            return Err(
                "loadgen --mode adaptive|mixed needs --db DB to build the answer key".into(),
            )
        }
    };
    let options = LoadGenOptions {
        addr: addr.clone(),
        exam: exam.clone(),
        clients: clients
            .map(|n| n.parse::<usize>().map_err(|_| "--clients needs a number"))
            .transpose()?
            .unwrap_or(16),
        seed: seed
            .map(|n| n.parse::<u64>().map_err(|_| "--seed needs a number"))
            .transpose()?
            .unwrap_or(0),
        ramp: ramp
            .map(|n| {
                n.parse::<f64>()
                    .ok()
                    .filter(|s| s.is_finite() && *s >= 0.0)
                    .map(std::time::Duration::from_secs_f64)
                    .ok_or("--ramp needs a non-negative number of seconds")
            })
            .transpose()?,
        mode,
        key,
        ..LoadGenOptions::default()
    };
    let report = run_loadgen(&options)?;
    println!(
        "loadgen: {} sitting(s) completed, {} request(s), {} answer(s), {} failure(s), \
         {} shed response(s), {} retry(ies)",
        report.completed,
        report.requests,
        report.answers,
        report.failures,
        report.shed,
        report.retries
    );
    if report.failures > 0 {
        return Err(format!("{} client(s) failed", report.failures));
    }
    Ok(())
}

fn tree(args: &[String]) -> CliResult {
    let [path, problem_id] = args else {
        return Err("tree needs <db> <problem-id>".into());
    };
    let repository = load(path)?;
    let problem = repository
        .problem(&problem_id.parse().map_err(|err| format!("{err}"))?)
        .map_err(|err| err.to_string())?;
    print_block(&problem.metadata().render_tree());
    Ok(())
}
