//! Facade crate for the MINE cognition assessment authoring system — a
//! reproduction of Hung et al., *A Cognition Assessment Authoring System
//! for E-Learning* (ICDCS 2004 Workshops).
//!
//! Re-exports every workspace crate under one roof so examples and
//! downstream users can depend on a single crate:
//!
//! * [`core`] — shared vocabulary (ids, cognition levels, responses)
//! * [`xml`] — from-scratch XML reader/writer
//! * [`metadata`] — the MINE SCORM assessment metadata model (§3)
//! * [`itembank`] — the problem & exam database (§5.1–5.4)
//! * [`qti`] — IMS QTI-style interchange (§2.3)
//! * [`scorm`] — SCORM packaging and run-time environment (§2.4, §5.5)
//! * [`delivery`] — exam sessions and the monitor subsystem (§5)
//! * [`simulator`] — synthetic student cohorts (evaluation substrate)
//! * [`analysis`] — the assessment analysis model (§4)
//! * [`authoring`] — the authoring system facade (§5)
//! * [`adaptive`] — the adaptive-testing extension promised in §6
//! * [`server`] — the concurrent delivery micro-service (§5, networked)
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end walkthrough: author a
//! small exam, simulate a class sitting it, and run the paper's analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mine_adaptive as adaptive;
pub use mine_analysis as analysis;
pub use mine_authoring as authoring;
pub use mine_core as core;
pub use mine_delivery as delivery;
pub use mine_itembank as itembank;
pub use mine_metadata as metadata;
pub use mine_qti as qti;
pub use mine_scorm as scorm;
pub use mine_server as server;
pub use mine_simulator as simulator;
pub use mine_store as store;
pub use mine_xml as xml;
